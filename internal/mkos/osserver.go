package mkos

import (
	"errors"

	"vmmk/internal/fslite"
	"vmmk/internal/hw"
	"vmmk/internal/mk"
	"vmmk/internal/trace"
)

// PID identifies a process of the OS server.
type PID uint32

// Syscall numbers, deliberately identical to package vmmos so the same
// workloads run on both systems.
const (
	SysGetPID uint32 = iota + 1
	SysWrite
	SysYield
	SysNetSend
	SysNetRecv
	SysBlockRead
	SysBlockWrite
)

// IPC protocol labels used between the servers.
const (
	LabelSyscall uint32 = 0x100 + iota
	LabelNetTx
	LabelNetRxDeliver
	LabelBlkRead
	LabelBlkWrite
	LabelStoreRead
	LabelStoreWrite
	LabelStoreSnapshot
)

// Errors surfaced by the OS personality.
var (
	ErrNoSuchProcess = errors.New("mkos: no such process")
	ErrNoNetwork     = errors.New("mkos: no network driver attached")
	ErrNoBlock       = errors.New("mkos: no block service attached")
	ErrBadRequest    = errors.New("mkos: malformed request")
)

// Proc is one user process: its own address space (paged by the OS server)
// and a client thread.
type Proc struct {
	PID    PID
	Name   string
	Thread *mk.Thread
	Space  *mk.Space

	rxDelivered uint64
}

// RxDelivered returns how many packets the process has consumed.
func (p *Proc) RxDelivered() uint64 { return p.rxDelivered }

// OSServer is the paravirtualised guest OS: one server thread that
// implements the syscall interface for its processes, holding a network
// connection to the driver server and a block service (driver or store).
type OSServer struct {
	K      *mk.Kernel
	Space  *mk.Space
	Thread *mk.Thread

	procs   map[PID]*Proc
	byTID   map[mk.ThreadID]*Proc
	nextPID PID

	Net *NetClient
	Blk BlockService

	console     []byte
	rxQueue     [][]byte
	syscallWork hw.Cycles
	argScratch  []uint64 // reused Syscall word buffer (see Syscall)
	zeroTx      []byte   // reused all-zero TX payload (see SysNetSend)
	homeCPU     int      // CPU the server and its processes are pinned to (Pin)

	pagerWindow hw.VPN // next free window page for fault service
}

// BlockService is the OS server's view of block storage: direct to the
// disk driver or through the storage server.
type BlockService interface {
	Read(block uint64) ([]byte, error)
	Write(block uint64, data []byte) error
}

// NewOSServer boots an OS server named name on kernel k.
func NewOSServer(k *mk.Kernel, name string) (*OSServer, error) {
	sp, err := k.NewSpace(name, mk.NilThread)
	if err != nil {
		return nil, err
	}
	os := &OSServer{
		K:           k,
		Space:       sp,
		procs:       make(map[PID]*Proc),
		byTID:       make(map[mk.ThreadID]*Proc),
		nextPID:     1,
		syscallWork: 150,
		pagerWindow: 0x9000,
	}
	os.Thread = k.NewThread(sp, name, 5, os.handle)
	return os, nil
}

// Component returns the server's trace attribution name.
func (os *OSServer) Component() string { return os.Thread.Component() }

// Comp returns the server's interned trace attribution handle.
func (os *OSServer) Comp() trace.Comp { return os.Thread.Comp() }

// SetSyscallWork tunes the modelled per-syscall in-server work.
func (os *OSServer) SetSyscallWork(c hw.Cycles) { os.syscallWork = c }

// Spawn creates a process: a fresh space paged by the OS server, plus its
// thread.
func (os *OSServer) Spawn(name string) (*Proc, error) {
	sp, err := os.K.NewSpace(os.Space.Name+"."+name, os.Thread.ID)
	if err != nil {
		return nil, err
	}
	t := os.K.NewThread(sp, sp.Name, 1, nil)
	if os.homeCPU != 0 {
		if err := os.K.SetAffinity(t.ID, os.homeCPU); err != nil {
			return nil, err
		}
	}
	p := &Proc{PID: os.nextPID, Name: name, Thread: t, Space: sp}
	os.nextPID++
	os.procs[p.PID] = p
	os.byTID[t.ID] = p
	os.K.M.CPU.Work(os.Comp(), 500)
	return p, nil
}

// Pin re-homes the OS server thread and every one of its processes onto
// cpu; later Spawns inherit the placement. This is the mk-side analogue of
// vmm.PlaceVCPUs: the SMP experiment (E12) pins each guest OS instance to
// its own CPU while the driver servers stay on the boot CPU, so syscalls
// stay CPU-local and driver IPC pays the cross-CPU IPI surcharge.
func (os *OSServer) Pin(cpu int) error {
	if err := os.K.SetAffinity(os.Thread.ID, cpu); err != nil {
		return err
	}
	for pid := PID(1); pid < os.nextPID; pid++ {
		if p := os.procs[pid]; p != nil {
			if err := os.K.SetAffinity(p.Thread.ID, cpu); err != nil {
				return err
			}
		}
	}
	os.homeCPU = cpu
	return nil
}

// zeroBuf returns a reusable all-zero buffer of length n. Synthetic
// workloads transmit blank payloads; the IPC layer clones the message
// before anyone could mutate it, so one grow-only buffer serves all sends.
func (os *OSServer) zeroBuf(n int) []byte {
	if cap(os.zeroTx) < n {
		os.zeroTx = make([]byte, n)
	}
	return os.zeroTx[:n]
}

// Proc returns the process for pid, or nil.
func (os *OSServer) Proc(pid PID) *Proc { return os.procs[pid] }

// Syscall issues a system call from process pid: one IPC call to the OS
// server — the L4Linux structure the paper's §3.2 equates with Xen's
// bounced syscalls.
func (os *OSServer) Syscall(pid PID, no uint32, args ...uint64) ([]uint64, error) {
	p := os.procs[pid]
	if p == nil {
		return nil, ErrNoSuchProcess
	}
	// Reused scratch: Call clones the message before the handler sees it
	// and never retains the original, so one buffer serves every syscall.
	words := append(os.argScratch[:0], uint64(no))
	words = append(words, args...)
	os.argScratch = words
	reply, err := os.K.Call(p.Thread.ID, os.Thread.ID, mk.Msg{Label: LabelSyscall, Words: words})
	if err != nil {
		return nil, err
	}
	return reply.Words, nil
}

// handle is the OS server's IPC entry point: syscalls from its processes,
// packet deliveries from the net driver, and page faults from its
// processes (the server is their external pager).
func (os *OSServer) handle(k *mk.Kernel, from mk.ThreadID, msg mk.Msg) (mk.Msg, error) {
	comp := os.Comp()
	switch msg.Label {
	case mk.LabelPageFault:
		return os.handleFault(k, from, msg)
	case LabelNetRxDeliver:
		// One packet from the driver; payload already in msg.Data
		// (string transfer) or granted via map items + Words[0]=len.
		k.M.CPU.Work(comp, 250)
		// The kernel delivered a private clone of the message; its Data is
		// ours to keep without another copy.
		os.rxQueue = append(os.rxQueue, msg.Data)
		return mk.Msg{}, nil
	case LabelSyscall:
		return os.handleSyscall(k, from, msg)
	}
	return mk.Msg{}, ErrBadRequest
}

// handleFault services a page fault of one of this server's processes:
// allocate backing, map it into the server's window, delegate to the
// faulter. This is the external-pager protocol of §3.1.
func (os *OSServer) handleFault(k *mk.Kernel, from mk.ThreadID, msg mk.Msg) (mk.Msg, error) {
	comp := os.Comp()
	k.M.CPU.Work(comp, 400) // vm_area lookup, policy
	if len(msg.Words) < 2 {
		return mk.Msg{}, ErrBadRequest
	}
	vpn := hw.VPN(msg.Words[0])
	f, err := k.M.Mem.Alloc(os.Component())
	if err != nil {
		return mk.Msg{}, err
	}
	window := os.pagerWindow
	os.pagerWindow++
	os.Space.PT.Map(window, hw.PTE{Frame: f, Perms: hw.PermRW, User: true})
	return mk.Msg{
		Label: mk.LabelPageFaultReply,
		Map:   []mk.MapItem{{SrcVPN: window, DstVPN: vpn, Count: 1, Perms: hw.PermRW}},
	}, nil
}

func errno(v uint64) mk.Msg { return mk.Msg{Words: []uint64{v}} }

// handleSyscall dispatches one system call inside the OS server.
func (os *OSServer) handleSyscall(k *mk.Kernel, from mk.ThreadID, msg mk.Msg) (mk.Msg, error) {
	comp := os.Comp()
	k.M.CPU.Work(comp, os.syscallWork)
	if len(msg.Words) == 0 {
		return mk.Msg{}, ErrBadRequest
	}
	no := uint32(msg.Words[0])
	args := msg.Words[1:]
	p := os.byTID[from]
	switch no {
	case SysGetPID:
		if p == nil {
			return errno(^uint64(0)), nil
		}
		return errno(uint64(p.PID)), nil
	case SysWrite:
		if len(args) < 1 {
			return mk.Msg{}, ErrBadRequest
		}
		os.console = append(os.console, byte(args[0]))
		return errno(1), nil
	case SysYield:
		return mk.Msg{}, nil
	case SysNetSend:
		if os.Net == nil {
			return errno(^uint64(0)), nil
		}
		n := int(args[0])
		if err := os.Net.Send(os.zeroBuf(n)); err != nil {
			return errno(^uint64(0)), nil
		}
		return errno(uint64(n)), nil
	case SysNetRecv:
		if len(os.rxQueue) == 0 {
			return errno(0), nil
		}
		pkt := os.rxQueue[0]
		os.rxQueue = os.rxQueue[1:]
		if p != nil {
			p.rxDelivered++
		}
		return errno(uint64(len(pkt))), nil
	case SysBlockRead:
		if os.Blk == nil {
			return errno(^uint64(0)), nil
		}
		if _, err := os.Blk.Read(args[0]); err != nil {
			return errno(^uint64(0)), nil
		}
		return errno(0), nil
	case SysBlockWrite:
		if os.Blk == nil {
			return errno(^uint64(0)), nil
		}
		if err := os.Blk.Write(args[0], []byte("block-data")); err != nil {
			return errno(^uint64(0)), nil
		}
		return errno(0), nil
	}
	return errno(^uint64(0)), nil // ENOSYS
}

// MountFS formats and mounts an fslite filesystem over the server's block
// service — the same filesystem code the VMM personality mounts, which is
// the §2.2 component-reuse claim in action.
func (os *OSServer) MountFS(blocks uint64) (*fslite.FS, error) {
	if os.Blk == nil {
		return nil, ErrNoBlock
	}
	return fslite.Mkfs(os.Blk, os.K.M.Mem.PageSize(), blocks)
}

// Console returns bytes written with SysWrite.
func (os *OSServer) Console() []byte { return os.console }

// PendingRx returns the number of queued received packets.
func (os *OSServer) PendingRx() int { return len(os.rxQueue) }

// DeliverPacket is the driver-facing entry: it is invoked via IPC (the
// driver calls k.Send to our thread), but exposed for tests.
func (os *OSServer) DeliverPacket(payload []byte) {
	os.rxQueue = append(os.rxQueue, append([]byte(nil), payload...))
}
