package mkos

import (
	"vmmk/internal/hw/dev"
	"vmmk/internal/mk"
	"vmmk/internal/trace"
)

// BlkDriver is the user-level disk driver server: one thread owning the
// physical disk, receiving its completion interrupts as IPC and serving
// partition-relative reads and writes to clients via IPC calls.
type BlkDriver struct {
	K      *mk.Kernel
	Disk   *dev.Disk
	Space  *mk.Space
	Thread *mk.Thread

	parts    map[mk.ThreadID]*partition
	nextBase uint64
	nextTag  uint64
	inflight map[uint64]*blkPending

	served   uint64
	replyBuf []byte // reused read-reply staging page (kernel clones replies)
}

type partition struct {
	base, size uint64
}

type blkPending struct {
	done bool
	ok   bool
}

// NewBlkDriver boots the disk driver server and claims the disk interrupt.
func NewBlkDriver(k *mk.Kernel, disk *dev.Disk) (*BlkDriver, error) {
	sp, err := k.NewSpace("srv.blk", mk.NilThread)
	if err != nil {
		return nil, err
	}
	d := &BlkDriver{
		K:        k,
		Disk:     disk,
		Space:    sp,
		parts:    make(map[mk.ThreadID]*partition),
		inflight: make(map[uint64]*blkPending),
	}
	d.Thread = k.NewThread(sp, "srv.blk", 8, d.handle)
	if err := k.RegisterIRQ(disk.IRQ(), d.Thread.ID); err != nil {
		return nil, err
	}
	return d, nil
}

// Component returns the driver's trace attribution name.
func (d *BlkDriver) Component() string { return d.Thread.Component() }

// Comp returns the server's interned trace attribution handle.
func (d *BlkDriver) Comp() trace.Comp { return d.Thread.Comp() }

// GrantPartition assigns a fresh partition of size blocks to a client
// thread (an OS server or the storage server).
func (d *BlkDriver) GrantPartition(client mk.ThreadID, size uint64) {
	d.parts[client] = &partition{base: d.nextBase, size: size}
	d.nextBase += size
	d.K.M.CPU.Work(d.Comp(), 200)
}

// handle serves IRQ IPCs and client read/write calls.
func (d *BlkDriver) handle(k *mk.Kernel, from mk.ThreadID, msg mk.Msg) (mk.Msg, error) {
	comp := d.Comp()
	switch msg.Label {
	case mk.LabelIRQ:
		for _, c := range d.Disk.Reap() {
			k.M.CPU.Work(comp, 200)
			if p, ok := d.inflight[c.Req.Tag]; ok {
				p.done, p.ok = true, c.OK
				delete(d.inflight, c.Req.Tag)
			}
		}
		return mk.Msg{}, nil
	case LabelBlkRead, LabelBlkWrite:
		if len(msg.Words) < 1 {
			return mk.Msg{}, ErrBadRequest
		}
		part := d.parts[from]
		if part == nil {
			return mk.Msg{}, ErrNoBlock
		}
		block := msg.Words[0]
		if block >= part.size {
			return mk.Msg{}, ErrBadRequest
		}
		k.M.CPU.Work(comp, 300) // request validation, translation
		f, err := k.M.Mem.Alloc(d.Component())
		if err != nil {
			return mk.Msg{}, err
		}
		defer k.M.Mem.Free(f)
		op := dev.DiskRead
		if msg.Label == LabelBlkWrite {
			op = dev.DiskWrite
			// Freshly allocated frames are all-zero by PhysMem invariant,
			// so staging is just the payload copy.
			copy(k.M.Mem.Data(f), msg.Data)
			k.M.CPU.Work(comp, k.M.CPU.CopyCost(uint64(len(msg.Data))))
		}
		d.nextTag++
		tag := d.nextTag
		pend := &blkPending{}
		d.inflight[tag] = pend
		d.Disk.Submit(dev.DiskReq{Op: op, Block: part.base + block, Frame: f, Tag: tag})
		// "Block" until the completion interrupt lands (delivered to this
		// same thread as an IRQ IPC by the pump).
		for i := 0; i < 64 && !pend.done; i++ {
			if k.PumpIO(8) == 0 {
				break
			}
		}
		if !pend.done || !pend.ok {
			return mk.Msg{}, ErrBadRequest
		}
		d.served++
		if op == dev.DiskRead {
			ps := k.M.Mem.PageSize()
			// Reused scratch: the kernel clones the reply before the
			// client sees it.
			if cap(d.replyBuf) < int(ps) {
				d.replyBuf = make([]byte, ps)
			}
			out := d.replyBuf[:ps]
			copy(out, k.M.Mem.Data(f))
			k.M.CPU.Work(comp, k.M.CPU.CopyCost(ps))
			return mk.Msg{Data: out}, nil
		}
		return mk.Msg{Words: []uint64{0}}, nil
	}
	return mk.Msg{}, ErrBadRequest
}

// Served returns the number of completed client requests.
func (d *BlkDriver) Served() uint64 { return d.served }

// BlkClient adapts the driver to the BlockService interface for one client
// thread.
type BlkClient struct {
	drv    *BlkDriver
	client mk.ThreadID
}

// NewBlkClient grants the client a partition and returns its handle.
func (d *BlkDriver) NewBlkClient(client mk.ThreadID, size uint64) *BlkClient {
	d.GrantPartition(client, size)
	return &BlkClient{drv: d, client: client}
}

// Read fetches one block via IPC to the driver.
func (c *BlkClient) Read(block uint64) ([]byte, error) {
	reply, err := c.drv.K.Call(c.client, c.drv.Thread.ID, mk.Msg{Label: LabelBlkRead, Words: []uint64{block}})
	if err != nil {
		return nil, err
	}
	return reply.Data, nil
}

// Write stores one block via IPC to the driver.
func (c *BlkClient) Write(block uint64, data []byte) error {
	_, err := c.drv.K.Call(c.client, c.drv.Thread.ID, mk.Msg{Label: LabelBlkWrite, Words: []uint64{block}, Data: data})
	return err
}

var _ BlockService = (*BlkClient)(nil)
