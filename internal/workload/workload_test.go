package workload

import (
	"testing"
	"testing/quick"
)

func TestPacketStreamShape(t *testing.T) {
	ps := PacketStream{Count: 5, Size: 64, Dest: 3}
	if err := ps.Validate(); err != nil {
		t.Fatal(err)
	}
	pkts := ps.Packets()
	if len(pkts) != 5 {
		t.Fatalf("count = %d", len(pkts))
	}
	for i, p := range pkts {
		if len(p) != 64 {
			t.Fatalf("packet %d size %d", i, len(p))
		}
		if p[0] != 3 {
			t.Fatalf("packet %d dest %d", i, p[0])
		}
	}
	// Payloads differ between packets (integrity patterns).
	if string(pkts[0][1:]) == string(pkts[1][1:]) {
		t.Fatal("payload pattern not per-packet")
	}
}

func TestPacketStreamValidate(t *testing.T) {
	if err := (PacketStream{Count: 1, Size: 0}).Validate(); err == nil {
		t.Fatal("zero size must be invalid")
	}
	if err := (PacketStream{Count: -1, Size: 64}).Validate(); err == nil {
		t.Fatal("negative count must be invalid")
	}
}

func TestSyscallMixDeterministic(t *testing.T) {
	a := DefaultMix.Sequence(100, 42)
	b := DefaultMix.Sequence(100, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different sequence")
		}
	}
	c := DefaultMix.Sequence(100, 43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical sequence")
	}
}

func TestSyscallMixWeights(t *testing.T) {
	seq := (SyscallMix{GetPID: 1, Write: 0, Yield: 0}).Sequence(50, 1)
	for _, op := range seq {
		if op.Kind != OpGetPID {
			t.Fatal("pure-getpid mix emitted something else")
		}
	}
	if (SyscallMix{}).Sequence(10, 1) != nil {
		t.Fatal("zero-weight mix should be empty")
	}
}

func TestBlockPatternBounds(t *testing.T) {
	ops := (BlockPattern{N: 200, WSBlocks: 16, WriteFrac: 0.5, Seed: 7}).Ops()
	writes := 0
	for _, op := range ops {
		if op.Arg >= 16 {
			t.Fatalf("block %d outside working set", op.Arg)
		}
		if op.Kind == OpBlockWrite {
			writes++
		} else if op.Kind != OpBlockRead {
			t.Fatalf("unexpected op %v", op.Kind)
		}
	}
	if writes == 0 || writes == 200 {
		t.Fatalf("write fraction degenerate: %d/200", writes)
	}
}

func TestWebStream(t *testing.T) {
	reqs := (WebStream{N: 100, WSBlocks: 32, Seed: 9}).Requests()
	if len(reqs) != 100 {
		t.Fatal("wrong count")
	}
	big := 0
	for _, r := range reqs {
		if r.ReqSize < 128 || r.ReqSize >= 384 {
			t.Fatalf("req size %d out of range", r.ReqSize)
		}
		if r.RespSize == 4096 {
			big++
		} else if r.RespSize != 512 {
			t.Fatalf("resp size %d unexpected", r.RespSize)
		}
		if r.Block >= 32 {
			t.Fatal("block outside working set")
		}
	}
	if big == 0 || big == 100 {
		t.Fatalf("bimodal response degenerate: %d/100 big", big)
	}
}

func TestRateSchedule(t *testing.T) {
	if RateSchedule(1000) != 2_000_000 {
		t.Fatalf("1k pkt/s gap = %d", RateSchedule(1000))
	}
	if RateSchedule(0) != 2_000_000_000 {
		t.Fatal("zero rate should clamp to 1 pkt/s")
	}
	if RateSchedule(100_000) >= RateSchedule(1000) {
		t.Fatal("higher rate must give smaller gap")
	}
}

func TestQuickBlockPatternInBounds(t *testing.T) {
	f := func(seed uint64, ws uint8) bool {
		w := uint64(ws%32) + 1
		for _, op := range (BlockPattern{N: 50, WSBlocks: w, WriteFrac: 0.3, Seed: seed}).Ops() {
			if op.Arg >= w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpKindStrings(t *testing.T) {
	for k := OpGetPID; k <= OpBlockWrite; k++ {
		if k.String() == "invalid" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}
