// Package workload generates the deterministic operation streams the
// experiments replay against both systems: packet arrival schedules with
// controlled sizes and rates, system-call mixes, block-I/O patterns and a
// composite web-serving request stream. Identical seeds yield identical
// streams, so the two platforms always see exactly the same input.
package workload

import (
	"fmt"

	"vmmk/internal/simrand"
)

// PacketStream describes a network receive workload: count packets of a
// fixed size addressed to a destination index, the Cherkasova-Gardner
// sweep's unit of work.
type PacketStream struct {
	Count int
	Size  int
	Dest  byte
}

// Packets materialises the stream. Each packet's first byte is the
// destination index (the demux key both netback and the mk net driver use);
// the rest is a deterministic pattern for integrity checks.
func (ps PacketStream) Packets() [][]byte {
	out := make([][]byte, ps.Count)
	for i := range out {
		p := make([]byte, ps.Size)
		if len(p) > 0 {
			p[0] = ps.Dest
		}
		for j := 1; j < len(p); j++ {
			p[j] = byte(i + j)
		}
		out[i] = p
	}
	return out
}

// Validate checks stream parameters.
func (ps PacketStream) Validate() error {
	if ps.Count < 0 || ps.Size < 1 {
		return fmt.Errorf("workload: invalid packet stream %+v", ps)
	}
	return nil
}

// SyscallMix is a weighted system-call workload.
type SyscallMix struct {
	GetPID int // weight of null syscalls
	Write  int // weight of console writes
	Yield  int // weight of yields
}

// DefaultMix is a getpid-heavy mix approximating a syscall microbenchmark.
var DefaultMix = SyscallMix{GetPID: 8, Write: 1, Yield: 1}

// Op is one operation in a generated sequence.
type Op struct {
	Kind OpKind
	Arg  uint64
}

// OpKind enumerates workload operations.
type OpKind uint8

// Operation kinds.
const (
	OpGetPID OpKind = iota
	OpWrite
	OpYield
	OpNetSend
	OpNetRecv
	OpBlockRead
	OpBlockWrite
)

// String names the workload operation.
func (k OpKind) String() string {
	switch k {
	case OpGetPID:
		return "getpid"
	case OpWrite:
		return "write"
	case OpYield:
		return "yield"
	case OpNetSend:
		return "netsend"
	case OpNetRecv:
		return "netrecv"
	case OpBlockRead:
		return "blockread"
	case OpBlockWrite:
		return "blockwrite"
	}
	return "invalid"
}

// Sequence generates n ops drawn from the mix with the given seed.
func (m SyscallMix) Sequence(n int, seed uint64) []Op {
	total := m.GetPID + m.Write + m.Yield
	if total <= 0 {
		return nil
	}
	r := simrand.New(seed)
	out := make([]Op, n)
	for i := range out {
		v := r.Intn(total)
		switch {
		case v < m.GetPID:
			out[i] = Op{Kind: OpGetPID}
		case v < m.GetPID+m.Write:
			out[i] = Op{Kind: OpWrite, Arg: uint64('a' + r.Intn(26))}
		default:
			out[i] = Op{Kind: OpYield}
		}
	}
	return out
}

// BlockPattern is a block-I/O workload: n operations over a working set of
// wsBlocks, with the given write fraction.
type BlockPattern struct {
	N         int
	WSBlocks  uint64
	WriteFrac float64
	Seed      uint64
}

// Ops materialises the pattern.
func (bp BlockPattern) Ops() []Op {
	r := simrand.New(bp.Seed)
	out := make([]Op, bp.N)
	for i := range out {
		block := r.Uint64n(maxU64(bp.WSBlocks, 1))
		if r.Bool(bp.WriteFrac) {
			out[i] = Op{Kind: OpBlockWrite, Arg: block}
		} else {
			out[i] = Op{Kind: OpBlockRead, Arg: block}
		}
	}
	return out
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// WebRequest is one request of the composite web-serving workload motivated
// by the paper's I/O arguments: receive a request packet, consult storage,
// send a response packet.
type WebRequest struct {
	ReqSize  int
	RespSize int
	Block    uint64
}

// WebStream generates n web requests over a file working set.
type WebStream struct {
	N        int
	WSBlocks uint64
	Seed     uint64
}

// Requests materialises the stream. Request sizes model small HTTP GETs;
// response sizes are bimodal (small dynamic pages and larger static ones).
func (ws WebStream) Requests() []WebRequest {
	r := simrand.New(ws.Seed)
	out := make([]WebRequest, ws.N)
	for i := range out {
		resp := 512
		if r.Bool(0.3) {
			resp = 4096
		}
		out[i] = WebRequest{
			ReqSize:  128 + r.Intn(256),
			RespSize: resp,
			Block:    r.Uint64n(maxU64(ws.WSBlocks, 1)),
		}
	}
	return out
}

// RateSchedule converts a packets-per-second rate into an inter-arrival gap
// in cycles, given the simulation's nominal clock frequency. The absolute
// frequency is a modelling constant (2 GHz); experiments report shapes, not
// wall-clock throughput.
func RateSchedule(pktPerSec int) uint64 {
	const hz = 2_000_000_000
	if pktPerSec <= 0 {
		return hz
	}
	return hz / uint64(pktPerSec)
}
