package trace

import (
	"fmt"
	"strings"
)

// Table is a minimal fixed-column text table used by the experiment harness
// to print paper-style result tables. It right-aligns numeric-looking cells
// and left-aligns everything else.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row. Cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	dot := false
	digits := 0
	for i, r := range s {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case r == '-' && i == 0:
		case r == '.' && !dot:
			dot = true
		case r == '%' && i == len(s)-1:
		case r == 'x' && i == len(s)-1: // ratio suffix like "1.03x"
		default:
			return false
		}
	}
	return digits > 0
}

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	for i, h := range t.Headers {
		if len(h) > widths[i] {
			widths[i] = len(h)
		}
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncol; i++ {
			var c string
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if looksNumeric(c) {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			}
		}
		// Trim trailing spaces for clean golden-file comparisons.
		s := b.String()
		trimmed := strings.TrimRight(s, " ")
		b.Reset()
		b.WriteString(trimmed)
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(ncol-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers first).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	if len(t.Headers) > 0 {
		for i, h := range t.Headers {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(h))
		}
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
