package trace

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"vmmk/internal/simrand"
)

func TestInternIdempotent(t *testing.T) {
	g := NewRegistry()
	a := g.Intern("mk.srv.net")
	for i := 0; i < 10; i++ {
		if got := g.Intern("mk.srv.net"); got != a {
			t.Fatalf("re-intern returned %d, want %d", got, a)
		}
	}
	if g.Name(a) != "mk.srv.net" {
		t.Fatalf("Name(%d) = %q", a, g.Name(a))
	}
	if c, ok := g.Lookup("mk.srv.net"); !ok || c != a {
		t.Fatalf("Lookup = (%d, %v), want (%d, true)", c, ok, a)
	}
	if _, ok := g.Lookup("mk.srv.blk"); ok {
		t.Fatal("Lookup invented a handle")
	}
	if g.Intern("") != CompNone {
		t.Fatal("empty name should intern to CompNone")
	}
}

func TestInternParentLinks(t *testing.T) {
	g := NewRegistry()
	leaf := g.Intern("mk.srv.net")
	srv, ok := g.Lookup("mk.srv")
	if !ok {
		t.Fatal("interning a leaf did not intern its dotted parent")
	}
	mk, ok := g.Lookup("mk")
	if !ok {
		t.Fatal("interning a leaf did not intern its dotted root")
	}
	if g.Parent(leaf) != srv || g.Parent(srv) != mk || g.Parent(mk) != CompNone {
		t.Fatalf("parent chain %d->%d->%d->%d broken", leaf, g.Parent(leaf), g.Parent(srv), g.Parent(mk))
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
}

// TestCyclesPrefixEquivalence pins the handle-backed CyclesPrefix to the old
// string-scanning semantics: the sum over every charged component whose name
// has the given string prefix.
func TestCyclesPrefixEquivalence(t *testing.T) {
	r := NewRecorder(0)
	charges := map[string]uint64{
		"vmm.xen":       100,
		"vmm.dom0":      200,
		"vmm.domU1":     30,
		"vmm.domU2":     40,
		"mk.kernel":     500,
		"mk.srv.net":    60,
		"mk.srv.blk":    70,
		"native.kernel": 900,
	}
	// Pre-register one prefix before any charge so both creation orders
	// (group-then-members and members-then-group) are exercised.
	if got := r.CyclesPrefix("vmm.domU"); got != 0 {
		t.Fatalf("empty recorder prefix sum = %d", got)
	}
	for name, cyc := range charges {
		r.ChargeCycles(r.Intern(name), cyc)
	}
	for _, prefix := range []string{"vmm.domU", "vmm.", "mk.srv", "mk.", "native", "nosuch", ""} {
		var want uint64
		for name, cyc := range charges {
			if strings.HasPrefix(name, prefix) {
				want += cyc
			}
		}
		if got := r.CyclesPrefix(prefix); got != want {
			t.Errorf("CyclesPrefix(%q) = %d, want %d", prefix, got, want)
		}
	}
	// Members interned after the group was created must join it.
	r.ChargeCycles(r.Intern("vmm.domU3"), 7)
	if got := r.CyclesPrefix("vmm.domU"); got != 30+40+7 {
		t.Errorf("late-interned member missing from prefix group: got %d", got)
	}
}

func TestSnapshotFlatLedger(t *testing.T) {
	r := NewRecorder(0)
	a := r.Intern("a")
	r.ChargeCycles(a, 10)
	s := r.Snapshot()
	r.ChargeCycles(a, 5)
	b := r.Intern("b") // interned after the snapshot
	r.ChargeCycles(b, 3)
	if got := r.CyclesSinceComp(s, a); got != 5 {
		t.Errorf("delta a = %d, want 5", got)
	}
	if got := r.CyclesSinceComp(s, b); got != 3 {
		t.Errorf("delta for post-snapshot component = %d, want 3", got)
	}
	if got := r.CyclesSince(s, "b"); got != 3 {
		t.Errorf("string delta for post-snapshot component = %d, want 3", got)
	}
	if got := r.CyclesSince(s, "never-charged"); got != 0 {
		t.Errorf("delta for unknown component = %d, want 0", got)
	}
	// The snapshot is immutable: further charges must not leak into it.
	r.ChargeCycles(a, 100)
	if got := r.CyclesSinceComp(s, a); got != 105 {
		t.Errorf("delta a after more charges = %d, want 105", got)
	}
}

// TestQuickHandleNameAgree is the property test for the two lookup paths:
// whatever sequence of interleaved charges happens, the handle-based ledger
// and the name-based queries must agree on every component, and prefix sums
// must match a scan over Components().
func TestQuickHandleNameAgree(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		rng := simrand.New(uint64(seed))
		r := NewRecorder(0)
		want := make(map[string]uint64)
		for _, op := range ops {
			name := fmt.Sprintf("p%d.c%d", op%3, op%7)
			cyc := uint64(rng.Intn(1000))
			if op%5 == 0 {
				r.Charge(uint64(op), Kind(op)%kindCount, r.Intern(name), cyc)
			} else {
				r.ChargeCycles(r.Intern(name), cyc)
			}
			want[name] += cyc
		}
		for name, w := range want {
			if r.Cycles(name) != w {
				return false
			}
			c, ok := r.Registry().Lookup(name)
			if !ok || r.CyclesComp(c) != w || r.Registry().Name(c) != name {
				return false
			}
		}
		// Prefix sums against a direct scan of charged components.
		for _, prefix := range []string{"p0.", "p1.", "p2.", "p", ""} {
			var scan uint64
			for _, name := range r.Components() {
				if strings.HasPrefix(name, prefix) {
					scan += r.Cycles(name)
				}
			}
			if r.CyclesPrefix(prefix) != scan {
				return false
			}
		}
		return true
	}
	// testing/quick's default generator is time-seeded; a fixed-seed source
	// keeps the generated (seed, ops) inputs — and so the whole property
	// test — reproducible run to run, including under -shuffle=on.
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLogRingWraparound(t *testing.T) {
	const ringCap = 4
	r := NewRecorder(ringCap)
	x := r.Intern("x")
	// Exactly at capacity: no eviction yet, order preserved.
	for i := uint64(0); i < ringCap; i++ {
		r.Charge(i, KTrap, x, 1)
	}
	log := r.Log()
	if len(log) != ringCap || log[0].At != 0 || log[ringCap-1].At != ringCap-1 {
		t.Fatalf("pre-wrap log wrong: %+v", log)
	}
	// Push far past capacity, crossing the wrap point several times.
	for i := uint64(ringCap); i < 3*ringCap+1; i++ {
		r.Charge(i, KTrap, x, 1)
	}
	log = r.Log()
	if len(log) != ringCap {
		t.Fatalf("log length = %d, want %d", len(log), ringCap)
	}
	for i, rec := range log {
		want := uint64(3*ringCap+1-ringCap) + uint64(i)
		if rec.At != want {
			t.Fatalf("log[%d].At = %d, want %d (window %+v)", i, rec.At, want, log)
		}
		if rec.Component != "x" {
			t.Fatalf("log[%d].Component = %q", i, rec.Component)
		}
	}
	// Reset rewinds the ring to empty and reuses it cleanly.
	r.Reset()
	if len(r.Log()) != 0 {
		t.Fatal("reset did not clear the ring")
	}
	r.Charge(99, KTrap, x, 1)
	if log = r.Log(); len(log) != 1 || log[0].At != 99 {
		t.Fatalf("post-reset log wrong: %+v", log)
	}
}

func TestResetKeepsHandlesValid(t *testing.T) {
	r := NewRecorder(0)
	a := r.Intern("vmm.dom0")
	r.ChargeCycles(a, 10)
	r.Reset()
	if r.TotalCycles() != 0 || len(r.Components()) != 0 {
		t.Fatal("reset left ledger state behind")
	}
	r.ChargeCycles(a, 3) // the old handle must still attribute correctly
	if got := r.Cycles("vmm.dom0"); got != 3 {
		t.Fatalf("post-reset cycles = %d, want 3", got)
	}
	if got, ok := r.Registry().Lookup("vmm.dom0"); !ok || got != a {
		t.Fatal("reset invalidated interned handle")
	}
}
