// Package trace records what the simulated kernels do: how many times each
// privileged primitive fires and how many CPU cycles each component
// consumes. Every experiment in the paper reduces to questions over these
// two ledgers ("how many boundary crossings?", "whose CPU time is it?"),
// so the recorder is deliberately dumb and exact: monotone counters, no
// sampling. It sits below everything — package hw charges through it, both
// kernels (mk, vmm) and their personalities (mkos, vmmos) intern their
// component names into it, and package core reduces it into the result
// tables.
//
// Components are identified by interned handles, not strings. A Registry
// interns dotted component names ("vmm.dom0", "mk.srv.net", "cpu1.ipi")
// into dense integer Comp handles; producers intern once at
// boot/registration time (hw.CPU helpers, kernel/hypervisor/domain/thread
// constructors all store their handle) and charge through the handle
// thereafter. That makes the hot path — Charge/ChargeCycles under every
// simulated privileged operation — two array increments into a flat
// ledger, with no hashing and no allocation. Interning also records dotted
// parent links and maintains prefix-group membership, so aggregate queries
// (CyclesPrefix) are sums over member slices computed at intern time
// rather than scans of all names. String-keyed queries (Cycles,
// CyclesSince) remain for rendering and tests; they resolve through the
// registry once per call.
//
// The optional bounded event log is a ring buffer (cmd/tracedump prints
// it), and table.go renders the aligned/CSV tables every experiment emits.
package trace
