package trace

import "testing"

// Microbenchmarks for the charge hot path. Every simulated privileged
// operation funnels through Charge/ChargeCycles, so these two are the
// constant factor of the entire experiment engine. BENCH_trace.json at the
// repo root records the string-keyed (pre-handle) baseline next to the
// current numbers.

// BenchmarkRecorderCharge measures one Charge to a single component — the
// tightest possible loop over the ledger.
func BenchmarkRecorderCharge(b *testing.B) {
	r := NewRecorder(0)
	xen := r.Intern("vmm.xen")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Charge(uint64(i), KHypercall, xen, 1)
	}
}

// BenchmarkTraceHotPath mimics one bounced guest syscall's charge pattern:
// monitor entry, bounce, guest-kernel work, exit — four attributions across
// two components plus a windowed query every 1024 ops.
func BenchmarkTraceHotPath(b *testing.B) {
	r := NewRecorder(0)
	xen := r.Intern("vmm.xen")
	domU := r.Intern("vmm.domU1")
	b.ReportAllocs()
	b.ResetTimer()
	s := r.Snapshot()
	for i := 0; i < b.N; i++ {
		at := uint64(i)
		r.Charge(at, KTrap, xen, 150)
		r.Charge(at, KExceptionBounce, xen, 250)
		r.ChargeCycles(domU, 500)
		r.Charge(at, KKernelExit, xen, 120)
		if i%1024 == 0 {
			_ = r.CyclesSinceComp(s, domU)
			_ = r.CyclesPrefix("vmm.domU")
		}
	}
}

// BenchmarkChargeN measures one aggregate charge standing for 64 events —
// the batched hot path the event-driven engine funnels loops through. Divide
// by 64 for the per-event cost to compare against BenchmarkRecorderCharge.
func BenchmarkChargeN(b *testing.B) {
	r := NewRecorder(0)
	xen := r.Intern("vmm.xen")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ChargeN(uint64(i), KHypercall, xen, 1, 64)
	}
}

// BenchmarkBatchFlush measures a full accumulate-and-flush round over three
// kinds plus plain work — one dirty-scan round's worth of charging.
func BenchmarkBatchFlush(b *testing.B) {
	r := NewRecorder(0)
	batch := r.NewBatch(r.Intern("hw.cpu0"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.ChargeN(KShadowPTUpdate, 60, 64)
		batch.ChargeN(KTLBFlush, 95, 64)
		batch.ChargeN(KTLBShootdown, 90, 64)
		batch.Work(1000)
		batch.Flush(uint64(i))
	}
}

// BenchmarkRecorderChargeLogged measures the ring-buffer log in its steady
// (wrapping) state: every Charge evicts the oldest record in O(1).
func BenchmarkRecorderChargeLogged(b *testing.B) {
	r := NewRecorder(256)
	xen := r.Intern("vmm.xen")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Charge(uint64(i), KHypercall, xen, 1)
	}
}
