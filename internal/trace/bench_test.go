package trace

import "testing"

// Microbenchmarks for the charge hot path. Every simulated privileged
// operation funnels through Charge/ChargeCycles, so these two are the
// constant factor of the entire experiment engine. BENCH_trace.json at the
// repo root records the string-keyed (pre-handle) baseline next to the
// current numbers.

// BenchmarkRecorderCharge measures one Charge to a single component — the
// tightest possible loop over the ledger.
func BenchmarkRecorderCharge(b *testing.B) {
	r := NewRecorder(0)
	xen := r.Intern("vmm.xen")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Charge(uint64(i), KHypercall, xen, 1)
	}
}

// BenchmarkTraceHotPath mimics one bounced guest syscall's charge pattern:
// monitor entry, bounce, guest-kernel work, exit — four attributions across
// two components plus a windowed query every 1024 ops.
func BenchmarkTraceHotPath(b *testing.B) {
	r := NewRecorder(0)
	xen := r.Intern("vmm.xen")
	domU := r.Intern("vmm.domU1")
	b.ReportAllocs()
	b.ResetTimer()
	s := r.Snapshot()
	for i := 0; i < b.N; i++ {
		at := uint64(i)
		r.Charge(at, KTrap, xen, 150)
		r.Charge(at, KExceptionBounce, xen, 250)
		r.ChargeCycles(domU, 500)
		r.Charge(at, KKernelExit, xen, 120)
		if i%1024 == 0 {
			_ = r.CyclesSinceComp(s, domU)
			_ = r.CyclesPrefix("vmm.domU")
		}
	}
}

// BenchmarkRecorderChargeLogged measures the ring-buffer log in its steady
// (wrapping) state: every Charge evicts the oldest record in O(1).
func BenchmarkRecorderChargeLogged(b *testing.B) {
	r := NewRecorder(256)
	xen := r.Intern("vmm.xen")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Charge(uint64(i), KHypercall, xen, 1)
	}
}
