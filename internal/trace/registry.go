package trace

import "strings"

// Comp is an interned component handle: a small dense integer standing for a
// dotted component name ("vmm.dom0", "mk.srv.net"). Handles are minted by a
// Registry at boot/registration time and are then the only currency the
// charge path deals in — a Charge is two array increments, with no hashing
// and no allocation. Handles are only meaningful against the Registry that
// minted them (in practice: the Recorder of the Machine the component lives
// on).
type Comp int32

// CompNone is the zero Comp: the registry root. It is never returned by
// Intern for a non-empty name, so an uninitialised Comp field charges to the
// root slot rather than to another component — visible in summaries as "".
const CompNone Comp = 0

// Registry interns dotted component names into Comp handles. Interning a
// name also interns its dotted ancestors ("mk.srv.net" brings "mk.srv" and
// "mk") and records a parent link per handle, so hierarchy queries are
// answered from links computed once at intern time rather than by scanning
// names per query.
//
// A Registry additionally maintains prefix groups: CyclesPrefix-style string
// prefixes ("vmm.domU") mapped to the member handles whose names start with
// the prefix. Membership is updated as names are interned, making a prefix
// query a sum over a precomputed member slice.
//
// Like the Recorder that owns it, a Registry is not safe for concurrent use;
// the simulation is single-threaded per machine.
type Registry struct {
	byName  map[string]Comp
	names   []string // indexed by Comp; names[CompNone] = ""
	parents []Comp   // indexed by Comp; dotted parent, CompNone at the root

	prefixes map[string]*prefixGroup
}

type prefixGroup struct {
	prefix  string
	members []Comp
}

// NewRegistry returns an empty registry containing only the root handle.
func NewRegistry() *Registry {
	return &Registry{
		byName:   make(map[string]Comp),
		names:    []string{""},
		parents:  []Comp{CompNone},
		prefixes: make(map[string]*prefixGroup),
	}
}

// Intern returns the handle for name, minting it (and handles for its dotted
// ancestors) on first use. Interning is idempotent: the same name always
// yields the same handle. The empty name is the root, CompNone.
func (g *Registry) Intern(name string) Comp {
	if name == "" {
		return CompNone
	}
	if c, ok := g.byName[name]; ok {
		return c
	}
	parent := CompNone
	if i := strings.LastIndexByte(name, '.'); i > 0 {
		parent = g.Intern(name[:i])
	}
	c := Comp(len(g.names))
	g.names = append(g.names, name)
	g.parents = append(g.parents, parent)
	g.byName[name] = c
	for _, pg := range g.prefixes {
		if strings.HasPrefix(name, pg.prefix) {
			pg.members = append(pg.members, c)
		}
	}
	return c
}

// Lookup returns the handle for name without interning it.
func (g *Registry) Lookup(name string) (Comp, bool) {
	c, ok := g.byName[name]
	return c, ok
}

// Name returns the dotted name of c ("" for CompNone or an out-of-range
// handle).
func (g *Registry) Name(c Comp) string {
	if c <= CompNone || int(c) >= len(g.names) {
		return ""
	}
	return g.names[c]
}

// Parent returns the dotted parent of c ("mk.srv" for "mk.srv.net"), or
// CompNone for top-level components and the root.
func (g *Registry) Parent(c Comp) Comp {
	if c <= CompNone || int(c) >= len(g.parents) {
		return CompNone
	}
	return g.parents[c]
}

// Len returns the number of interned components, excluding the root.
func (g *Registry) Len() int { return len(g.names) - 1 }

// prefixMembers returns (creating on first use) the member handles of the
// prefix group for prefix. Creation scans the names interned so far; from
// then on Intern keeps the group current.
func (g *Registry) prefixMembers(prefix string) []Comp {
	if pg, ok := g.prefixes[prefix]; ok {
		return pg.members
	}
	pg := &prefixGroup{prefix: prefix}
	for c := Comp(1); int(c) < len(g.names); c++ {
		if strings.HasPrefix(g.names[c], prefix) {
			pg.members = append(pg.members, c)
		}
	}
	g.prefixes[prefix] = pg
	return pg.members
}
