package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindNamesComplete(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

// TestKindClassificationTotal drives every defined kind through every
// classifier: IsIPCEquivalent's switch is total-with-panic, so a newly added
// kind that nobody classified fails here (and in every experiment that sums
// IPC-equivalent ops) instead of being silently dropped from E2 counts.
func TestKindClassificationTotal(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		_ = k.IsIPCEquivalent() // panics on an unclassified kind
		_ = k.IsMKPrimitive()
		_ = k.IsVMMPrimitive()
	}
}

// TestPostPaperKindsClassification pins the deliberate decision that the
// kinds added after the paper's §2.2 enumeration (dirty-log faults in PR 2,
// IPIs and TLB shootdowns in PR 4) are neither primitives nor
// IPC-equivalent: they are substrate plumbing both kernel structures pay
// for, and the logical transfers they accompany are already counted once.
func TestPostPaperKindsClassification(t *testing.T) {
	for _, k := range []Kind{KDirtyLogFault, KIPI, KTLBShootdown} {
		if k.IsIPCEquivalent() {
			t.Errorf("%v must not count as IPC-equivalent", k)
		}
		if k.IsMKPrimitive() || k.IsVMMPrimitive() {
			t.Errorf("%v must not count as a paper primitive", k)
		}
	}
}

func TestKindClassesDisjoint(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		if k.IsMKPrimitive() && k.IsVMMPrimitive() {
			t.Errorf("%v is in both primitive classes", k)
		}
	}
}

func TestVMMPrimitiveCountIsTen(t *testing.T) {
	// The paper (§2.2) enumerates exactly ten common VMM primitives; the
	// census experiment depends on that cardinality.
	n := 0
	for k := Kind(0); k < kindCount; k++ {
		if k >= KGuestUserToKernel && k <= KVirtDeviceOp {
			n++
		}
	}
	if n != 10 {
		t.Fatalf("paper-enumerated VMM primitives = %d, want 10", n)
	}
}

func TestChargeAccumulates(t *testing.T) {
	r := NewRecorder(0)
	r.Charge(0, KHypercall, r.Intern("vmm.dom0"), 100)
	r.Charge(5, KHypercall, r.Intern("vmm.dom0"), 50)
	r.Charge(9, KIPCSend, r.Intern("mk.kernel"), 25)
	if got := r.Counts(KHypercall); got != 2 {
		t.Errorf("hypercall count = %d, want 2", got)
	}
	if got := r.Cycles("vmm.dom0"); got != 150 {
		t.Errorf("dom0 cycles = %d, want 150", got)
	}
	if got := r.TotalCycles(); got != 175 {
		t.Errorf("total cycles = %d, want 175", got)
	}
}

func TestChargeCyclesNoEvent(t *testing.T) {
	r := NewRecorder(0)
	r.ChargeCycles(r.Intern("app"), 42)
	for k := Kind(0); k < kindCount; k++ {
		if r.Counts(k) != 0 {
			t.Fatalf("ChargeCycles incremented event counter %v", k)
		}
	}
	if r.Cycles("app") != 42 {
		t.Fatal("cycles not charged")
	}
}

// TestChargeNEquivalence pins the counter/ledger contract: ChargeN(c, n) is
// indistinguishable from n individual Charges in every query the experiments
// use — event counts, per-component cycles, totals, snapshots.
func TestChargeNEquivalence(t *testing.T) {
	loop := NewRecorder(0)
	comp := loop.Intern("mk.kernel")
	for i := 0; i < 7; i++ {
		loop.Charge(uint64(i), KIPCSend, comp, 30)
	}
	batch := NewRecorder(0)
	batch.ChargeN(6, KIPCSend, batch.Intern("mk.kernel"), 30, 7)

	if a, b := loop.Counts(KIPCSend), batch.Counts(KIPCSend); a != b {
		t.Errorf("counts: loop %d, batch %d", a, b)
	}
	if a, b := loop.Cycles("mk.kernel"), batch.Cycles("mk.kernel"); a != b {
		t.Errorf("cycles: loop %d, batch %d", a, b)
	}
	if a, b := loop.TotalCycles(), batch.TotalCycles(); a != b {
		t.Errorf("total: loop %d, batch %d", a, b)
	}
	if a, b := loop.IPCEquivalentOps(), batch.IPCEquivalentOps(); a != b {
		t.Errorf("ipc-equivalent: loop %d, batch %d", a, b)
	}
}

// TestChargeNLogSemantics pins the event-log contract: one aggregate record
// carrying the count and the total cycles, so summing Cycles over the log is
// independent of how charges were batched.
func TestChargeNLogSemantics(t *testing.T) {
	r := NewRecorder(16)
	r.ChargeN(42, KPageFlip, r.Intern("vmm.dom0"), 10, 5)
	log := r.Log()
	if len(log) != 1 {
		t.Fatalf("log has %d records, want 1 aggregate", len(log))
	}
	rec := log[0]
	if rec.At != 42 || rec.Kind != KPageFlip || rec.Component != "vmm.dom0" {
		t.Errorf("aggregate record = %+v", rec)
	}
	if rec.Cycles != 50 {
		t.Errorf("aggregate cycles = %d, want 50 (total, not per-event)", rec.Cycles)
	}
	if rec.Count != 5 {
		t.Errorf("aggregate count = %d, want 5", rec.Count)
	}

	// A plain Charge logs Count 1 — the log's Count column is total.
	r.Charge(43, KTrap, r.Intern("vmm.dom0"), 7)
	log = r.Log()
	if got := log[len(log)-1].Count; got != 1 {
		t.Errorf("plain Charge logged Count %d, want 1", got)
	}
}

func TestChargeNZeroCount(t *testing.T) {
	r := NewRecorder(4)
	r.ChargeN(0, KTrap, r.Intern("x"), 100, 0)
	if r.Counts(KTrap) != 0 || r.TotalCycles() != 0 || len(r.Log()) != 0 {
		t.Fatal("ChargeN with count 0 must be a no-op")
	}
}

// TestBatchFlush pins the accumulator: kinds land in first-charge order, each
// as one aggregate record, with uncounted work folded into the ledger.
func TestBatchFlush(t *testing.T) {
	r := NewRecorder(16)
	b := r.NewBatch(r.Intern("cpu0"))
	b.Charge(KTLBShootdown, 90)
	b.ChargeN(KIPI, 400, 3)
	b.Charge(KTLBShootdown, 90)
	b.Work(1000)
	if got := b.Pending(); got != 90+3*400+90+1000 {
		t.Errorf("pending = %d", got)
	}
	b.Flush(77)

	if got := r.Counts(KTLBShootdown); got != 2 {
		t.Errorf("shootdown count = %d, want 2", got)
	}
	if got := r.Counts(KIPI); got != 3 {
		t.Errorf("ipi count = %d, want 3", got)
	}
	if got := r.Cycles("cpu0"); got != 90+3*400+90+1000 {
		t.Errorf("cpu0 cycles = %d", got)
	}
	log := r.Log()
	if len(log) != 2 {
		t.Fatalf("log has %d records, want 2 aggregates", len(log))
	}
	// First-charge order: shootdown before IPI, both stamped at flush time.
	if log[0].Kind != KTLBShootdown || log[0].Count != 2 || log[0].Cycles != 180 || log[0].At != 77 {
		t.Errorf("first aggregate = %+v", log[0])
	}
	if log[1].Kind != KIPI || log[1].Count != 3 || log[1].Cycles != 1200 || log[1].At != 77 {
		t.Errorf("second aggregate = %+v", log[1])
	}

	// The flush reset the batch: a second flush adds nothing.
	before := r.TotalCycles()
	b.Flush(99)
	if r.TotalCycles() != before || len(r.Log()) != 2 {
		t.Fatal("flushing an empty batch changed the recorder")
	}
	if b.Pending() != 0 {
		t.Fatal("pending not cleared by flush")
	}
}

// TestBatchMatchesLoop is the differential form: a batch over a mixed charge
// sequence produces exactly the counters and ledger of the per-item loop.
func TestBatchMatchesLoop(t *testing.T) {
	loop := NewRecorder(0)
	lc := loop.Intern("hw.cpu1")
	for i := 0; i < 5; i++ {
		loop.Charge(uint64(i), KShadowPTUpdate, lc, 60)
		loop.Charge(uint64(i), KTLBFlush, lc, 95)
		loop.ChargeCycles(lc, 11)
	}

	batched := NewRecorder(0)
	b := batched.NewBatch(batched.Intern("hw.cpu1"))
	b.ChargeN(KShadowPTUpdate, 60, 5)
	b.ChargeN(KTLBFlush, 95, 5)
	b.Work(5 * 11)
	b.Flush(4)

	for k := Kind(0); k < kindCount; k++ {
		if loop.Counts(k) != batched.Counts(k) {
			t.Errorf("counts(%v): loop %d, batch %d", k, loop.Counts(k), batched.Counts(k))
		}
	}
	if loop.Cycles("hw.cpu1") != batched.Cycles("hw.cpu1") {
		t.Errorf("cycles: loop %d, batch %d", loop.Cycles("hw.cpu1"), batched.Cycles("hw.cpu1"))
	}
	if loop.TotalCycles() != batched.TotalCycles() {
		t.Errorf("total: loop %d, batch %d", loop.TotalCycles(), batched.TotalCycles())
	}
}

func TestCyclesPrefix(t *testing.T) {
	r := NewRecorder(0)
	r.ChargeCycles(r.Intern("vmm.dom0"), 10)
	r.ChargeCycles(r.Intern("vmm.domU1"), 20)
	r.ChargeCycles(r.Intern("mk.kernel"), 5)
	if got := r.CyclesPrefix("vmm."); got != 30 {
		t.Errorf("prefix sum = %d, want 30", got)
	}
}

func TestComponentsOrder(t *testing.T) {
	r := NewRecorder(0)
	r.ChargeCycles(r.Intern("b"), 1)
	r.ChargeCycles(r.Intern("a"), 1)
	r.ChargeCycles(r.Intern("b"), 1)
	got := r.Components()
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Errorf("components = %v, want [b a]", got)
	}
}

func TestIPCEquivalentOps(t *testing.T) {
	r := NewRecorder(0)
	r.Count(KIPCCall)
	r.Count(KPageFlip)
	r.Count(KTLBFlush) // not IPC-equivalent
	r.Count(KHypercall)
	// KHypercall is resource allocation, not a domain-crossing data/control
	// transfer in the E2 sense.
	if KHypercall.IsIPCEquivalent() {
		t.Fatal("hypercall should not count as IPC-equivalent")
	}
	if got := r.IPCEquivalentOps(); got != 2 {
		t.Errorf("IPC-equivalent ops = %d, want 2", got)
	}
}

func TestDistinctPrimitives(t *testing.T) {
	r := NewRecorder(0)
	r.Count(KIPCCall)
	r.Count(KIPCSend)
	r.Count(KHypercall)
	r.Count(KPageFlip)
	if got := len(r.DistinctPrimitives("mk")); got != 2 {
		t.Errorf("mk primitives = %d, want 2", got)
	}
	if got := len(r.DistinctPrimitives("vmm")); got != 2 {
		t.Errorf("vmm primitives = %d, want 2", got)
	}
	if got := len(r.DistinctPrimitives("")); got != 4 {
		t.Errorf("all primitives = %d, want 4", got)
	}
}

func TestLogBounded(t *testing.T) {
	r := NewRecorder(3)
	for i := uint64(0); i < 10; i++ {
		r.Charge(i, KTrap, r.Intern("x"), 1)
	}
	log := r.Log()
	if len(log) != 3 {
		t.Fatalf("log length = %d, want 3", len(log))
	}
	if log[0].At != 7 || log[2].At != 9 {
		t.Errorf("log kept wrong window: %+v", log)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRecorder(0)
	r.Charge(0, KIPCCall, r.Intern("mk.kernel"), 10)
	s := r.Snapshot()
	r.Charge(1, KIPCCall, r.Intern("mk.kernel"), 10)
	r.Charge(2, KIPCCall, r.Intern("mk.kernel"), 10)
	if got := r.CountsSince(s, KIPCCall); got != 2 {
		t.Errorf("delta counts = %d, want 2", got)
	}
	if got := r.CyclesSince(s, "mk.kernel"); got != 20 {
		t.Errorf("delta cycles = %d, want 20", got)
	}
	if got := r.IPCEquivalentSince(s); got != 2 {
		t.Errorf("delta ipc-equiv = %d, want 2", got)
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder(2)
	r.Charge(0, KTrap, r.Intern("x"), 5)
	r.Reset()
	if r.Counts(KTrap) != 0 || r.TotalCycles() != 0 || len(r.Log()) != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestSummaryDeterministic(t *testing.T) {
	build := func() string {
		r := NewRecorder(0)
		r.Charge(0, KHypercall, r.Intern("b"), 1)
		r.Charge(0, KIPCSend, r.Intern("a"), 2)
		return r.Summary()
	}
	if build() != build() {
		t.Fatal("summary not deterministic")
	}
	if !strings.Contains(build(), "vmm.hypercall") {
		t.Fatal("summary missing event name")
	}
}

func TestQuickChargeTotal(t *testing.T) {
	f := func(charges []uint32) bool {
		r := NewRecorder(0)
		var want uint64
		for i, c := range charges {
			comp := "c" + string(rune('a'+i%5))
			r.ChargeCycles(r.Intern(comp), uint64(c))
			want += uint64(c)
		}
		return r.TotalCycles() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("T1", "workload", "ops", "ratio")
	tb.AddRow("netrx", 1000, 1.03)
	tb.AddRow("syscall", 5, "0.99x")
	s := tb.String()
	if !strings.Contains(s, "T1") || !strings.Contains(s, "netrx") {
		t.Fatalf("bad table:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("table has %d lines, want 5:\n%s", len(lines), s)
	}
	for _, l := range lines {
		if strings.TrimRight(l, " ") != l {
			t.Fatalf("line has trailing spaces: %q", l)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`x,y`, `he said "hi"`)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
}

func TestLooksNumeric(t *testing.T) {
	cases := map[string]bool{
		"123": true, "-4.5": true, "87%": true, "1.03x": true,
		"abc": false, "": false, "1.2.3": false, "x": false,
	}
	for s, want := range cases {
		if got := looksNumeric(s); got != want {
			t.Errorf("looksNumeric(%q) = %v, want %v", s, got, want)
		}
	}
}
