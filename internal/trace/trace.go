// Package trace records what the simulated kernels do: how many times each
// privileged primitive fires and how many CPU cycles each component consumes.
// Every experiment in the paper reduces to questions over these two ledgers
// ("how many boundary crossings?", "whose CPU time is it?"), so the recorder
// is deliberately dumb and exact: monotone counters, no sampling.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies a class of kernel-level event. The set is the union of the
// primitives the paper enumerates for microkernels (§2.2, one IPC primitive)
// and for VMMs (§2.2, ten primitives), plus substrate events needed for cycle
// accounting.
type Kind uint8

// Event kinds. Microkernel side uses KIPC* and KMap*; the VMM side uses the
// KHyper*/KEvtchn/KPageFlip/KGrant* family. Shared hardware events are at the
// end.
const (
	// Microkernel primitives.
	KIPCSend Kind = iota
	KIPCReceive
	KIPCCall // send+receive rendezvous counted once per round trip
	KIPCMapTransfer
	KIPCStringTransfer
	KPagerFault // page fault forwarded to a user-level pager via IPC

	// VMM primitives (paper §2.2 items 1-10).
	KGuestUserToKernel // 1: sync switch guest-user -> guest-kernel
	KGuestKernelToUser // 2: sync switch guest-kernel -> guest-user
	KEvtchnSend        // 3: async cross-domain channel notification
	KHypercall         // 4: resource allocation / control via hypercall
	KShadowPTUpdate    // 5: in-VM resource allocation via PT virtualisation
	KPageFlip          // 6: resource re-allocation via page flipping
	KExceptionBounce   // 7: exception/page-fault virtualisation bounce
	KVirtIRQ           // 8: async event via virtual-interrupt signalling
	KHardIRQInject     // 9: hardware interrupt via virtualised controller
	KVirtDeviceOp      // 10: common virtual device (NIC/disk) operation
	KGrantMap
	KGrantCopy
	KSyscallFastPath // trap-gate shortcut, VMM not invoked

	// Shared substrate events.
	KTrap // entry to the privileged kernel/monitor from any source
	KKernelExit
	KContextSwitch // same-privilege thread/vCPU switch
	KWorldSwitch   // cross-domain (address-space or VM) switch
	KTLBFlush
	KTLBMiss
	KPageFault
	KIRQ // physical interrupt raised
	KDMATransfer
	KSchedule
	KFault // injected component failure

	// KDirtyLogFault is a guest store taken as a write-protect fault by the
	// dirty-page log (live pre-copy migration). Deliberately outside the E5
	// primitive ranges: it is a use of primitive 7's fault machinery, not a
	// new primitive, and the bounce itself is counted separately.
	KDirtyLogFault

	kindCount
)

var kindNames = [...]string{
	KIPCSend:           "ipc.send",
	KIPCReceive:        "ipc.receive",
	KIPCCall:           "ipc.call",
	KIPCMapTransfer:    "ipc.map",
	KIPCStringTransfer: "ipc.string",
	KPagerFault:        "ipc.pagerfault",
	KGuestUserToKernel: "vmm.guest-u2k",
	KGuestKernelToUser: "vmm.guest-k2u",
	KEvtchnSend:        "vmm.evtchn",
	KHypercall:         "vmm.hypercall",
	KShadowPTUpdate:    "vmm.shadowpt",
	KPageFlip:          "vmm.pageflip",
	KExceptionBounce:   "vmm.exc-bounce",
	KVirtIRQ:           "vmm.virq",
	KHardIRQInject:     "vmm.hirq-inject",
	KVirtDeviceOp:      "vmm.vdev",
	KGrantMap:          "vmm.grantmap",
	KGrantCopy:         "vmm.grantcopy",
	KSyscallFastPath:   "vmm.fastpath",
	KTrap:              "hw.trap",
	KKernelExit:        "hw.kexit",
	KContextSwitch:     "hw.ctxsw",
	KWorldSwitch:       "hw.worldsw",
	KTLBFlush:          "hw.tlbflush",
	KTLBMiss:           "hw.tlbmiss",
	KPageFault:         "hw.pagefault",
	KIRQ:               "hw.irq",
	KDMATransfer:       "hw.dma",
	KSchedule:          "hw.sched",
	KFault:             "sim.fault",
	KDirtyLogFault:     "vmm.dirtylog",
}

// String returns the stable dotted name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// NKinds is the number of defined event kinds.
const NKinds = int(kindCount)

// IsIPCEquivalent reports whether the kind counts as an "IPC-equivalent
// operation" for experiment E2: a kernel-mediated protection-domain crossing
// that transfers control or data between two parties. This is the paper's
// §3.2 notion ("a Xen-based system performs essentially the same number of
// IPC operations as a comparable microkernel-based system").
//
// Counting is per logical transfer, matching how KIPCCall counts one round
// trip: a bounced guest syscall counts once (KExceptionBounce), so its
// constituent guest-u2k/k2u ring transitions do not count again.
func (k Kind) IsIPCEquivalent() bool {
	switch k {
	case KIPCSend, KIPCReceive, KIPCCall, KIPCStringTransfer, KIPCMapTransfer, KPagerFault,
		KEvtchnSend, KPageFlip, KExceptionBounce, KVirtIRQ, KGrantCopy, KGrantMap:
		return true
	}
	return false
}

// IsVMMPrimitive reports whether the kind is one of the ten VMM primitives
// enumerated in §2.2 of the paper, for the primitive census (E5).
func (k Kind) IsVMMPrimitive() bool {
	return k >= KGuestUserToKernel && k <= KVirtDeviceOp
}

// IsMKPrimitive reports whether the kind is a microkernel primitive (all are
// facets of the single IPC mechanism), for the primitive census (E5).
func (k Kind) IsMKPrimitive() bool {
	return k <= KPagerFault
}

// Recorder accumulates event counts and per-component cycle attribution.
// The zero value is not ready to use; call NewRecorder.
type Recorder struct {
	counts [kindCount]uint64
	cycles map[string]uint64 // component -> cycles charged
	order  []string          // components in first-charge order
	log    []Record          // optional bounded event log
	logCap int
}

// Record is one logged event, kept only when logging is enabled.
type Record struct {
	At        uint64 // cycle timestamp
	Kind      Kind
	Component string
	Cycles    uint64
	Note      string
}

// NewRecorder returns an empty recorder. logCap > 0 enables the bounded
// event log (oldest entries are dropped beyond the cap).
func NewRecorder(logCap int) *Recorder {
	return &Recorder{cycles: make(map[string]uint64), logCap: logCap}
}

// Count increments the counter for kind.
func (r *Recorder) Count(kind Kind) { r.counts[kind]++ }

// CountN increments the counter for kind by n.
func (r *Recorder) CountN(kind Kind, n uint64) { r.counts[kind] += n }

// Charge attributes cycles to the named component and increments the kind
// counter. Component names are free-form but conventionally dotted paths
// ("vmm.dom0", "mk.kernel", "mk.srv.net").
func (r *Recorder) Charge(at uint64, kind Kind, component string, cycles uint64) {
	r.counts[kind]++
	r.chargeCycles(component, cycles)
	if r.logCap > 0 {
		if len(r.log) >= r.logCap {
			copy(r.log, r.log[1:])
			r.log = r.log[:len(r.log)-1]
		}
		r.log = append(r.log, Record{At: at, Kind: kind, Component: component, Cycles: cycles})
	}
}

// ChargeCycles attributes cycles to a component without counting an event;
// used for plain execution time (the workload "doing its job").
func (r *Recorder) ChargeCycles(component string, cycles uint64) {
	r.chargeCycles(component, cycles)
}

func (r *Recorder) chargeCycles(component string, cycles uint64) {
	if _, ok := r.cycles[component]; !ok {
		r.order = append(r.order, component)
	}
	r.cycles[component] += cycles
}

// Counts returns the count for kind.
func (r *Recorder) Counts(kind Kind) uint64 { return r.counts[kind] }

// Cycles returns the cycles charged to component.
func (r *Recorder) Cycles(component string) uint64 { return r.cycles[component] }

// CyclesPrefix sums cycles over all components whose name starts with prefix.
func (r *Recorder) CyclesPrefix(prefix string) uint64 {
	var sum uint64
	for name, c := range r.cycles {
		if strings.HasPrefix(name, prefix) {
			sum += c
		}
	}
	return sum
}

// TotalCycles sums cycles over all components.
func (r *Recorder) TotalCycles() uint64 {
	var sum uint64
	for _, c := range r.cycles {
		sum += c
	}
	return sum
}

// Components returns component names in first-charge order.
func (r *Recorder) Components() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// IPCEquivalentOps sums the counters of every IPC-equivalent kind (E2).
func (r *Recorder) IPCEquivalentOps() uint64 {
	var sum uint64
	for k := Kind(0); k < kindCount; k++ {
		if k.IsIPCEquivalent() {
			sum += r.counts[k]
		}
	}
	return sum
}

// DistinctPrimitives returns the distinct primitive kinds with non-zero
// counts, filtered by class ("mk", "vmm" or "" for both) — the raw material
// of the E5 census.
func (r *Recorder) DistinctPrimitives(class string) []Kind {
	var out []Kind
	for k := Kind(0); k < kindCount; k++ {
		if r.counts[k] == 0 {
			continue
		}
		switch class {
		case "mk":
			if k.IsMKPrimitive() {
				out = append(out, k)
			}
		case "vmm":
			if k.IsVMMPrimitive() {
				out = append(out, k)
			}
		default:
			if k.IsMKPrimitive() || k.IsVMMPrimitive() {
				out = append(out, k)
			}
		}
	}
	return out
}

// Log returns a copy of the bounded event log.
func (r *Recorder) Log() []Record {
	out := make([]Record, len(r.log))
	copy(out, r.log)
	return out
}

// Reset clears all counters, attributions and the log.
func (r *Recorder) Reset() {
	r.counts = [kindCount]uint64{}
	r.cycles = make(map[string]uint64)
	r.order = nil
	r.log = r.log[:0]
}

// Snapshot captures the current counter values so a caller can later compute
// a delta over a measurement window.
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{cycles: make(map[string]uint64, len(r.cycles))}
	s.counts = r.counts
	for k, v := range r.cycles {
		s.cycles[k] = v
	}
	return s
}

// Snapshot is a point-in-time copy of a Recorder's ledgers.
type Snapshot struct {
	counts [kindCount]uint64
	cycles map[string]uint64
}

// CountsSince returns the count delta for kind between s and the recorder's
// current state.
func (r *Recorder) CountsSince(s Snapshot, kind Kind) uint64 {
	return r.counts[kind] - s.counts[kind]
}

// CyclesSince returns the cycle delta for component between s and now.
func (r *Recorder) CyclesSince(s Snapshot, component string) uint64 {
	return r.cycles[component] - s.cycles[component]
}

// IPCEquivalentSince returns the IPC-equivalent op delta since s.
func (r *Recorder) IPCEquivalentSince(s Snapshot) uint64 {
	var sum uint64
	for k := Kind(0); k < kindCount; k++ {
		if k.IsIPCEquivalent() {
			sum += r.counts[k] - s.counts[k]
		}
	}
	return sum
}

// Summary renders a deterministic human-readable summary of all non-zero
// counters and all component cycle attributions.
func (r *Recorder) Summary() string {
	var b strings.Builder
	b.WriteString("events:\n")
	for k := Kind(0); k < kindCount; k++ {
		if r.counts[k] > 0 {
			fmt.Fprintf(&b, "  %-18s %12d\n", k.String(), r.counts[k])
		}
	}
	b.WriteString("cycles:\n")
	names := make([]string, 0, len(r.cycles))
	for n := range r.cycles {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %-18s %12d\n", n, r.cycles[n])
	}
	return b.String()
}
