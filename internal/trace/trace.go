package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies a class of kernel-level event. The set is the union of the
// primitives the paper enumerates for microkernels (§2.2, one IPC primitive)
// and for VMMs (§2.2, ten primitives), plus substrate events needed for cycle
// accounting.
type Kind uint8

// Event kinds. Microkernel side uses KIPC* and KMap*; the VMM side uses the
// KHyper*/KEvtchn/KPageFlip/KGrant* family. Shared hardware events are at the
// end.
const (
	// Microkernel primitives.
	KIPCSend Kind = iota
	KIPCReceive
	KIPCCall // send+receive rendezvous counted once per round trip
	KIPCMapTransfer
	KIPCStringTransfer
	KPagerFault // page fault forwarded to a user-level pager via IPC

	// VMM primitives (paper §2.2 items 1-10).
	KGuestUserToKernel // 1: sync switch guest-user -> guest-kernel
	KGuestKernelToUser // 2: sync switch guest-kernel -> guest-user
	KEvtchnSend        // 3: async cross-domain channel notification
	KHypercall         // 4: resource allocation / control via hypercall
	KShadowPTUpdate    // 5: in-VM resource allocation via PT virtualisation
	KPageFlip          // 6: resource re-allocation via page flipping
	KExceptionBounce   // 7: exception/page-fault virtualisation bounce
	KVirtIRQ           // 8: async event via virtual-interrupt signalling
	KHardIRQInject     // 9: hardware interrupt via virtualised controller
	KVirtDeviceOp      // 10: common virtual device (NIC/disk) operation
	KGrantMap
	KGrantCopy
	KSyscallFastPath // trap-gate shortcut, VMM not invoked

	// Shared substrate events.
	KTrap // entry to the privileged kernel/monitor from any source
	KKernelExit
	KContextSwitch // same-privilege thread/vCPU switch
	KWorldSwitch   // cross-domain (address-space or VM) switch
	KTLBFlush
	KTLBMiss
	KPageFault
	KIRQ // physical interrupt raised
	KDMATransfer
	KSchedule
	KFault // injected component failure

	// KDirtyLogFault is a guest store taken as a write-protect fault by the
	// dirty-page log (live pre-copy migration). Deliberately outside the E5
	// primitive ranges: it is a use of primitive 7's fault machinery, not a
	// new primitive, and the bounce itself is counted separately.
	KDirtyLogFault

	// KIPI is one inter-processor interrupt: a cross-CPU kick for remote
	// wakeup, rescheduling, work stealing or shootdown initiation. Like
	// KDirtyLogFault it sits outside the E5 primitive ranges — an IPI is
	// hardware plumbing both kernel structures pay for, not a new
	// extensibility primitive — and outside the E2 IPC-equivalent set,
	// because the logical transfer it accompanies (the cross-CPU IPC or
	// event delivery) is already counted once.
	KIPI

	// KTLBShootdown is one remote TLB invalidation performed by a target
	// CPU in response to a shootdown IPI. Counted per target CPU flushed,
	// so a broadcast shootdown on an N-CPU machine counts N-1 events.
	KTLBShootdown

	kindCount
)

var kindNames = [...]string{
	KIPCSend:           "ipc.send",
	KIPCReceive:        "ipc.receive",
	KIPCCall:           "ipc.call",
	KIPCMapTransfer:    "ipc.map",
	KIPCStringTransfer: "ipc.string",
	KPagerFault:        "ipc.pagerfault",
	KGuestUserToKernel: "vmm.guest-u2k",
	KGuestKernelToUser: "vmm.guest-k2u",
	KEvtchnSend:        "vmm.evtchn",
	KHypercall:         "vmm.hypercall",
	KShadowPTUpdate:    "vmm.shadowpt",
	KPageFlip:          "vmm.pageflip",
	KExceptionBounce:   "vmm.exc-bounce",
	KVirtIRQ:           "vmm.virq",
	KHardIRQInject:     "vmm.hirq-inject",
	KVirtDeviceOp:      "vmm.vdev",
	KGrantMap:          "vmm.grantmap",
	KGrantCopy:         "vmm.grantcopy",
	KSyscallFastPath:   "vmm.fastpath",
	KTrap:              "hw.trap",
	KKernelExit:        "hw.kexit",
	KContextSwitch:     "hw.ctxsw",
	KWorldSwitch:       "hw.worldsw",
	KTLBFlush:          "hw.tlbflush",
	KTLBMiss:           "hw.tlbmiss",
	KPageFault:         "hw.pagefault",
	KIRQ:               "hw.irq",
	KDMATransfer:       "hw.dma",
	KSchedule:          "hw.sched",
	KFault:             "sim.fault",
	KDirtyLogFault:     "vmm.dirtylog",
	KIPI:               "smp.ipi",
	KTLBShootdown:      "smp.shootdown",
}

// String returns the stable dotted name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// NKinds is the number of defined event kinds.
const NKinds = int(kindCount)

// IsIPCEquivalent reports whether the kind counts as an "IPC-equivalent
// operation" for experiment E2: a kernel-mediated protection-domain crossing
// that transfers control or data between two parties. This is the paper's
// §3.2 notion ("a Xen-based system performs essentially the same number of
// IPC operations as a comparable microkernel-based system").
//
// Counting is per logical transfer, matching how KIPCCall counts one round
// trip: a bounced guest syscall counts once (KExceptionBounce), so its
// constituent guest-u2k/k2u ring transitions do not count again.
//
// The switch is total: every defined kind appears in exactly one case, and
// an unclassified kind panics instead of silently not counting. Adding a
// kind therefore forces an explicit E2 decision here (KDirtyLogFault, KIPI
// and KTLBShootdown were added after the paper's enumeration and are
// deliberately in the "no" case — see their doc comments).
func (k Kind) IsIPCEquivalent() bool {
	switch k {
	case KIPCSend, KIPCReceive, KIPCCall, KIPCStringTransfer, KIPCMapTransfer, KPagerFault,
		KEvtchnSend, KPageFlip, KExceptionBounce, KVirtIRQ, KGrantCopy, KGrantMap:
		return true
	case KGuestUserToKernel, KGuestKernelToUser, KHypercall, KShadowPTUpdate,
		KHardIRQInject, KVirtDeviceOp, KSyscallFastPath,
		KTrap, KKernelExit, KContextSwitch, KWorldSwitch, KTLBFlush, KTLBMiss,
		KPageFault, KIRQ, KDMATransfer, KSchedule, KFault,
		KDirtyLogFault, KIPI, KTLBShootdown:
		return false
	default:
		panic(fmt.Sprintf("trace: kind %d has no IPC-equivalence classification; classify it in IsIPCEquivalent", uint8(k)))
	}
}

// IsVMMPrimitive reports whether the kind is one of the ten VMM primitives
// enumerated in §2.2 of the paper, for the primitive census (E5).
func (k Kind) IsVMMPrimitive() bool {
	return k >= KGuestUserToKernel && k <= KVirtDeviceOp
}

// IsMKPrimitive reports whether the kind is a microkernel primitive (all are
// facets of the single IPC mechanism), for the primitive census (E5).
func (k Kind) IsMKPrimitive() bool {
	return k <= KPagerFault
}

// Recorder accumulates event counts and per-component cycle attribution.
// The cycle ledger is a flat slice indexed by Comp handle; all charge-path
// methods deal in handles minted by the recorder's Registry (Intern), so a
// charge is two array increments with no hashing and no allocation. The
// string-keyed query methods (Cycles, CyclesPrefix, CyclesSince) remain for
// report rendering and tests; they resolve names through the registry once
// per call. The zero value is not ready to use; call NewRecorder.
type Recorder struct {
	reg     *Registry
	counts  [kindCount]uint64
	cycles  []uint64 // indexed by Comp; grown on demand
	seen    []bool   // indexed by Comp; true once charged
	charged []Comp   // components in first-charge order

	// Bounded event log as a ring buffer: once len(log) == logCap the
	// oldest record is overwritten in place — O(1) per eviction.
	log     []Record
	logHead int // index of the oldest record once the ring is full
	logCap  int
}

// Record is one logged entry, kept only when logging is enabled. A record
// aggregates Count events of the same kind against one component (Count is
// 1 for a plain Charge); Cycles is the total across all of them, so summing
// Cycles over the log is independent of how charges were batched.
type Record struct {
	At        uint64 // cycle timestamp (flush time for an aggregate)
	Kind      Kind
	Component string
	Cycles    uint64 // total cycles across the aggregated events
	Count     uint64 // events this record stands for (>= 1)
	Note      string
}

// NewRecorder returns an empty recorder with a fresh Registry. logCap > 0
// enables the bounded event log (oldest entries are dropped beyond the cap).
func NewRecorder(logCap int) *Recorder {
	return &Recorder{reg: NewRegistry(), logCap: logCap}
}

// Registry returns the recorder's component registry.
func (r *Recorder) Registry() *Registry { return r.reg }

// Intern returns the handle for a dotted component name, minting it on first
// use. Components intern once at boot/registration time and charge through
// the handle thereafter.
func (r *Recorder) Intern(name string) Comp {
	c := r.reg.Intern(name)
	r.ensure(c)
	return c
}

// ensure grows the ledger to cover handle c.
func (r *Recorder) ensure(c Comp) {
	if int(c) < len(r.cycles) {
		return
	}
	n := len(r.reg.names)
	if n <= int(c) {
		n = int(c) + 1
	}
	cycles := make([]uint64, n)
	copy(cycles, r.cycles)
	r.cycles = cycles
	seen := make([]bool, n)
	copy(seen, r.seen)
	r.seen = seen
}

// Count increments the counter for kind.
func (r *Recorder) Count(kind Kind) { r.counts[kind]++ }

// CountN increments the counter for kind by n.
func (r *Recorder) CountN(kind Kind, n uint64) { r.counts[kind] += n }

// Charge attributes cycles to the component and increments the kind counter.
func (r *Recorder) Charge(at uint64, kind Kind, c Comp, cycles uint64) {
	r.counts[kind]++
	r.chargeCycles(c, cycles)
	if r.logCap > 0 {
		r.logAppend(Record{At: at, Kind: kind, Component: r.reg.Name(c), Cycles: cycles, Count: 1})
	}
}

// ChargeN attributes count events of kind, costing cycles each, to the
// component in one ledger update — the batched equivalent of calling Charge
// count times with the same arguments. Counters and the cycle ledger end up
// exactly as the loop would leave them; the event log gets ONE aggregate
// record carrying the count and the total cycles instead of count records.
// A zero count charges nothing.
func (r *Recorder) ChargeN(at uint64, kind Kind, c Comp, cycles, count uint64) {
	if count == 0 {
		return
	}
	r.chargeAggregate(at, kind, c, cycles*count, count)
}

// chargeAggregate lands count events totalling totalCycles in one update.
func (r *Recorder) chargeAggregate(at uint64, kind Kind, c Comp, totalCycles, count uint64) {
	r.counts[kind] += count
	r.chargeCycles(c, totalCycles)
	if r.logCap > 0 {
		r.logAppend(Record{At: at, Kind: kind, Component: r.reg.Name(c), Cycles: totalCycles, Count: count})
	}
}

// ChargeCycles attributes cycles to a component without counting an event;
// used for plain execution time (the workload "doing its job").
func (r *Recorder) ChargeCycles(c Comp, cycles uint64) {
	r.chargeCycles(c, cycles)
}

func (r *Recorder) chargeCycles(c Comp, cycles uint64) {
	if int(c) >= len(r.cycles) {
		r.ensure(c)
	}
	if !r.seen[c] {
		r.seen[c] = true
		r.charged = append(r.charged, c)
	}
	r.cycles[c] += cycles
}

// logAppend adds rec to the ring, overwriting the oldest record when full.
func (r *Recorder) logAppend(rec Record) {
	if len(r.log) < r.logCap {
		r.log = append(r.log, rec)
		return
	}
	r.log[r.logHead] = rec
	r.logHead++
	if r.logHead == r.logCap {
		r.logHead = 0
	}
}

// Counts returns the count for kind.
func (r *Recorder) Counts(kind Kind) uint64 { return r.counts[kind] }

// Cycles returns the cycles charged to the named component.
func (r *Recorder) Cycles(component string) uint64 {
	c, ok := r.reg.Lookup(component)
	if !ok {
		return 0
	}
	return r.CyclesComp(c)
}

// CyclesComp returns the cycles charged to handle c.
func (r *Recorder) CyclesComp(c Comp) uint64 {
	if c < 0 || int(c) >= len(r.cycles) {
		return 0
	}
	return r.cycles[c]
}

// CyclesPrefix sums cycles over all components whose name starts with
// prefix. The member set is computed once per distinct prefix (and kept
// current as new components intern), so the query is a sum over a
// precomputed slice, not a scan of all names.
func (r *Recorder) CyclesPrefix(prefix string) uint64 {
	var sum uint64
	for _, c := range r.reg.prefixMembers(prefix) {
		sum += r.CyclesComp(c)
	}
	return sum
}

// TotalCycles sums cycles over all components.
func (r *Recorder) TotalCycles() uint64 {
	var sum uint64
	for _, c := range r.charged {
		sum += r.cycles[c]
	}
	return sum
}

// Components returns component names in first-charge order.
func (r *Recorder) Components() []string {
	out := make([]string, len(r.charged))
	for i, c := range r.charged {
		out[i] = r.reg.Name(c)
	}
	return out
}

// IPCEquivalentOps sums the counters of every IPC-equivalent kind (E2).
func (r *Recorder) IPCEquivalentOps() uint64 {
	var sum uint64
	for k := Kind(0); k < kindCount; k++ {
		if k.IsIPCEquivalent() {
			sum += r.counts[k]
		}
	}
	return sum
}

// DistinctPrimitives returns the distinct primitive kinds with non-zero
// counts, filtered by class ("mk", "vmm" or "" for both) — the raw material
// of the E5 census.
func (r *Recorder) DistinctPrimitives(class string) []Kind {
	var out []Kind
	for k := Kind(0); k < kindCount; k++ {
		if r.counts[k] == 0 {
			continue
		}
		switch class {
		case "mk":
			if k.IsMKPrimitive() {
				out = append(out, k)
			}
		case "vmm":
			if k.IsVMMPrimitive() {
				out = append(out, k)
			}
		default:
			if k.IsMKPrimitive() || k.IsVMMPrimitive() {
				out = append(out, k)
			}
		}
	}
	return out
}

// Log returns a copy of the bounded event log, oldest first.
func (r *Recorder) Log() []Record {
	out := make([]Record, len(r.log))
	n := copy(out, r.log[r.logHead:])
	copy(out[n:], r.log[:r.logHead])
	return out
}

// Reset clears all counters, attributions and the log. Interned handles
// remain valid: the registry survives a reset.
func (r *Recorder) Reset() {
	r.counts = [kindCount]uint64{}
	for _, c := range r.charged {
		r.cycles[c] = 0
		r.seen[c] = false
	}
	r.charged = r.charged[:0]
	r.log = r.log[:0]
	r.logHead = 0
}

// Batch accumulates charges against a single component so a hot loop's
// costs land in the flat ledger as one increment per kind — the deferred
// counterpart of ChargeN for loops whose per-item costs vary or mix counted
// events with plain work. Flush applies everything accumulated since the
// last flush: one aggregate log record per kind (in first-charge order,
// carrying the count and total cycles) plus a single uncounted-work add,
// then resets the batch for the next round. Counters and cycle totals are
// exactly what the equivalent Charge/ChargeCycles loop would have produced.
//
// A Batch does not advance any clock; callers advance virtual time as they
// accumulate (or in one step) and pass the flush-time timestamp to Flush.
type Batch struct {
	rec    *Recorder
	comp   Comp
	counts [kindCount]uint64
	cycles [kindCount]uint64
	work   uint64
	kinds  []Kind // kinds with pending counts, in first-charge order
}

// NewBatch returns an empty accumulator charging component c.
func (r *Recorder) NewBatch(c Comp) *Batch { return &Batch{rec: r, comp: c} }

// Comp returns the component the batch charges.
func (b *Batch) Comp() Comp { return b.comp }

// Charge accumulates one event of kind costing cycles.
func (b *Batch) Charge(kind Kind, cycles uint64) { b.ChargeN(kind, cycles, 1) }

// ChargeN accumulates count events of kind costing cycles each.
func (b *Batch) ChargeN(kind Kind, cycles, count uint64) {
	if count == 0 {
		return
	}
	if b.counts[kind] == 0 {
		b.kinds = append(b.kinds, kind)
	}
	b.counts[kind] += count
	b.cycles[kind] += cycles * count
}

// Work accumulates uncounted cycles (plain execution time).
func (b *Batch) Work(cycles uint64) { b.work += cycles }

// Pending returns the total cycles accumulated and not yet flushed.
func (b *Batch) Pending() uint64 {
	sum := b.work
	for _, k := range b.kinds {
		sum += b.cycles[k]
	}
	return sum
}

// Flush lands the accumulated charges in the recorder at timestamp at and
// resets the batch. Flushing an empty batch is a no-op.
func (b *Batch) Flush(at uint64) {
	for _, k := range b.kinds {
		b.rec.chargeAggregate(at, k, b.comp, b.cycles[k], b.counts[k])
		b.counts[k], b.cycles[k] = 0, 0
	}
	b.kinds = b.kinds[:0]
	if b.work > 0 {
		b.rec.chargeCycles(b.comp, b.work)
		b.work = 0
	}
}

// Snapshot captures the current counter values so a caller can later compute
// a delta over a measurement window.
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{counts: r.counts, cycles: make([]uint64, len(r.cycles))}
	copy(s.cycles, r.cycles)
	return s
}

// Snapshot is a point-in-time copy of a Recorder's ledgers.
type Snapshot struct {
	counts [kindCount]uint64
	cycles []uint64
}

// CountsSince returns the count delta for kind between s and the recorder's
// current state.
func (r *Recorder) CountsSince(s Snapshot, kind Kind) uint64 {
	return r.counts[kind] - s.counts[kind]
}

// CyclesSince returns the cycle delta for the named component between s and
// now. Components interned after the snapshot was taken had zero cycles then.
func (r *Recorder) CyclesSince(s Snapshot, component string) uint64 {
	c, ok := r.reg.Lookup(component)
	if !ok {
		return 0
	}
	return r.CyclesSinceComp(s, c)
}

// CyclesSinceComp returns the cycle delta for handle c between s and now.
func (r *Recorder) CyclesSinceComp(s Snapshot, c Comp) uint64 {
	var was uint64
	if c >= 0 && int(c) < len(s.cycles) {
		was = s.cycles[c]
	}
	return r.CyclesComp(c) - was
}

// IPCEquivalentSince returns the IPC-equivalent op delta since s.
func (r *Recorder) IPCEquivalentSince(s Snapshot) uint64 {
	var sum uint64
	for k := Kind(0); k < kindCount; k++ {
		if k.IsIPCEquivalent() {
			sum += r.counts[k] - s.counts[k]
		}
	}
	return sum
}

// Summary renders a deterministic human-readable summary of all non-zero
// counters and all component cycle attributions.
func (r *Recorder) Summary() string {
	var b strings.Builder
	b.WriteString("events:\n")
	for k := Kind(0); k < kindCount; k++ {
		if r.counts[k] > 0 {
			fmt.Fprintf(&b, "  %-18s %12d\n", k.String(), r.counts[k])
		}
	}
	b.WriteString("cycles:\n")
	names := make([]string, 0, len(r.charged))
	for _, c := range r.charged {
		names = append(names, r.reg.Name(c))
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %-18s %12d\n", n, r.Cycles(n))
	}
	return b.String()
}
