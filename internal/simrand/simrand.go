// Package simrand provides a small, deterministic pseudo-random number
// generator for the simulation. The standard library's math/rand would work,
// but a local xorshift keeps the sequence stable across Go releases, which the
// experiment tests depend on (identical seeds must yield identical traces
// forever).
package simrand

// Rand is a xorshift64* generator. The zero value is not valid; use New.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func New(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next value in the sequence.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("simrand: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Fork derives an independent generator whose sequence is a deterministic
// function of the parent's current state and the given salt. Use it to give
// each simulated component its own stream without coupling their draws.
func (r *Rand) Fork(salt uint64) *Rand {
	return New(r.Uint64() ^ (salt*0x9e3779b97f4a7c15 + 0x7f4a7c159e3779b9))
}
