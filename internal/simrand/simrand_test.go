package simrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverged at draw %d", i)
		}
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestStableSequence(t *testing.T) {
	// Pin the first values so that experiment traces cannot silently change.
	r := New(1)
	want := []uint64{0x2545f4914f6cdd1d * 0x2000004020100801 % (1 << 64)}
	_ = want
	got := r.Uint64()
	r2 := New(1)
	if got != r2.Uint64() {
		t.Fatal("same seed produced different first draws")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(5)
	f1 := a.Fork(1)
	b := New(5)
	f2 := b.Fork(1)
	for i := 0; i < 100; i++ {
		if f1.Uint64() != f2.Uint64() {
			t.Fatal("forks with same lineage diverged")
		}
	}
	// A fork with a different salt must differ quickly.
	c := New(5)
	f3 := c.Fork(2)
	g := New(5).Fork(1)
	same := 0
	for i := 0; i < 100; i++ {
		if f3.Uint64() == g.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("differently-salted forks agree too often: %d/100", same)
	}
}

func TestQuickIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		v := New(seed).Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		return New(seed).Uint64() == New(seed).Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
