// Package vmmk is a comparative systems laboratory reproducing the HotOS
// 2005 debate "Are Virtual-Machine Monitors Microkernels Done Right?": an
// L4-style microkernel and a Xen-style VMM built over one simulated,
// cycle-accounted hardware substrate, plus the experiment harness that
// turns each of the debate's empirical claims into a measurable result.
//
// The library lives under internal/; the public surfaces are the example
// programs (examples/), the experiment CLI (cmd/vmmklab), the trace
// inspector (cmd/tracedump) and the benchmark suite in this package, one
// benchmark per experiment table. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package vmmk
