module vmmk

go 1.24
